// Package core implements the persistent transactional memory (PTM)
// runtime under study: the best-performing redo-based algorithm
// ("orec-lazy") and undo-based algorithm ("orec-eager") from the
// paper's PACT'19 runtime, instrumented for a configurable durability
// domain on the simulated memory system.
//
// The central objects are:
//
//	TM     — the runtime: orec table, global clock, persistent thread
//	         descriptors (commit markers + logs), and the persistent
//	         heap with its allocator.
//	Thread — one worker's handle; owns a membus context and reusable
//	         read/write-set buffers.
//	Tx     — the per-attempt transaction handle passed to Atomic
//	         bodies; provides Load, Store, Alloc, Free, Abort.
//
// Algorithms (§II of the paper):
//
//	OrecLazy  (redo logging)  — TL2-style: writes buffer in a redo log
//	    whose index lives in DRAM and whose data lives in the
//	    persistent medium (the paper's split-log tuning); commit-time
//	    lock acquisition; O(1) fences per transaction.
//	OrecEager (undo logging)  — encounter-time locking with in-place
//	    update; each write persists an undo record first, ordered by a
//	    fence: O(W) fences per transaction, the cost §III-B measures.
package core

import (
	"fmt"

	"goptm/internal/durability"
	"goptm/internal/memdev"
	"goptm/internal/metrics"
	"goptm/internal/obs"
	"goptm/internal/wpq"
)

// Algo selects the PTM algorithm.
type Algo int

// The two algorithms the paper evaluates, plus the HTM mode the
// paper's §V poses as future work (valid only under durability
// domains that persist the caches; see htm.go).
const (
	OrecLazy  Algo = iota // redo logging, commit-time locking
	OrecEager             // undo logging, encounter-time locking
	AlgoHTM               // TSX-style logless hardware transactions
)

// String names the algorithm as the paper's figures do ("R"/"U").
func (a Algo) String() string {
	switch a {
	case OrecLazy:
		return "redo"
	case OrecEager:
		return "undo"
	case AlgoHTM:
		return "htm"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// Medium selects where the persistent heap lives: NVM (AppDirect) or
// a DRAM ramdisk (the paper's non-persistent "DRAM" baseline curves).
type Medium int

// Media for the persistent heap.
const (
	MediumNVM Medium = iota
	MediumDRAM
)

// String names the medium as the paper's figures do.
func (m Medium) String() string {
	switch m {
	case MediumNVM:
		return "Optane"
	case MediumDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Medium(%d)", int(m))
	}
}

// Config assembles a TM.
type Config struct {
	Algo    Algo
	Medium  Medium
	Domain  durability.Domain
	Threads int

	// HeapWords sizes the persistent heap (allocator-managed).
	HeapWords uint64
	// ScratchDRAMWords sizes the DRAM region beyond what the TM itself
	// needs (logs under MediumDRAM, page-cache frames). 0 selects a
	// default.
	ScratchDRAMWords uint64

	// MaxLogEntries bounds each thread's redo/undo log. 0 selects 1024.
	MaxLogEntries int
	// OrecSize is the orec-table size (power of two). 0 selects the
	// package default (2^20).
	OrecSize int

	// L3Lines, PageFrames, WindowNS and Ctl pass through to membus.
	L3Lines    int
	PageFrames int
	WindowNS   int64
	Ctl        wpq.Config
	// Lockstep passes through to membus: deterministic virtual-time
	// scheduling, required for bit-reproducible measurements (the
	// experiment sweeps set it so that results are cacheable and
	// identical whether cells run serially or in parallel).
	Lockstep bool

	// NoFence elides sfence while keeping clwb — the intentionally
	// incorrect variant behind Table III. Performance ablation only.
	NoFence bool
	// BatchedFlush defers redo-log clwbs to commit time instead of
	// issuing them incrementally per write (§III-B flush-timing
	// experiment). Meaningful for OrecLazy under ADR only.
	BatchedFlush bool
	// NoSplitLog disables the split-log tuning: write-set lookups are
	// charged as loads from the persistent log instead of a DRAM-
	// resident index probe.
	NoSplitLog bool
	// Backoff selects the contention-management policy applied after
	// an aborted attempt (see BackoffPolicy). The default randomized
	// exponential backoff approximates the reference runtime.
	Backoff BackoffPolicy
	// NTStoreLog writes redo-log entries with non-temporal stores
	// (movnt) instead of cached stores followed by clwb — the other
	// log-write strategy the reference runtime supports. Meaningful
	// for OrecLazy under ADR.
	NTStoreLog bool
	// MutateDropFence elides the single named fence site (e.g.
	// "lazy:F3", "eager:Fw" — see Thread.fence call sites) while
	// keeping every other fence. It exists solely for the crash
	// checker's mutation self-test: dropping one ordering fence must be
	// caught by the checker, proving the oracle has teeth. Never set it
	// outside tests.
	MutateDropFence string

	// Recorder attaches the observability layer: phase-breakdown
	// accounting and (when the recorder traces) Perfetto span/counter
	// events, threaded through every layer down to the memory system.
	// nil disables observability at zero cost.
	Recorder *obs.Recorder

	// Metrics attaches the hardware-counter registry (PMWatch-style
	// media/WPQ telemetry plus virtual-time sampling). It is shared
	// with the memory system: the WPQ controller feeds the media model
	// and occupancy gauge, the TM the transaction-outcome counters.
	// nil keeps the counter model off the device hot path; the TM then
	// builds a private counters-only registry for its own outcome
	// counters (Commits/Aborts never lose their home).
	Metrics *metrics.Registry
}

// BackoffPolicy selects what a thread does after an aborted attempt.
type BackoffPolicy int

// Backoff policies.
const (
	// BackoffExponential is randomized exponential backoff (default).
	BackoffExponential BackoffPolicy = iota
	// BackoffNone retries immediately — maximal livelock exposure.
	BackoffNone
	// BackoffLinear waits a small fixed-slope random delay.
	BackoffLinear
)

// String names the policy.
func (b BackoffPolicy) String() string {
	switch b {
	case BackoffExponential:
		return "exponential"
	case BackoffNone:
		return "none"
	case BackoffLinear:
		return "linear"
	default:
		return fmt.Sprintf("BackoffPolicy(%d)", int(b))
	}
}

// Persistent layout constants (word offsets from the medium base).
const (
	tmMagic     = 0x50544D31 // "PTM1"
	offTMMagic  = 0
	offThreads  = 1
	offMaxLog   = 2
	offHeapSize = 3
	offDescs    = 8
)

// Descriptor layout: one marker line followed by the log entries.
//
//	word 0: packed commit marker — status (2 bits) | entry count
//	        (30 bits) | log checksum (32 bits); see packMarker
//	words 1..7: reserved (zero)
//	words 8..: entries, two words each (addr, value)
//
// Packing status, count, and checksum into ONE word is what makes the
// marker crash-atomic: an 8-byte store either lands whole or not at
// all (powerfail atomicity of the media), so recovery can never
// observe a status from one epoch with a count or checksum from
// another — the torn-marker hazard a two-word marker has under
// adversarial word-granularity tears. The checksum covers the 2*count
// entry words and lets recovery reject a marker whose log tail never
// became durable (a stale or prematurely-evicted marker), the
// validation PMDK's redo log performs with its own log checksum.
const (
	descStatusOff = 0 // the packed marker word (historic name kept for tests)
	descEntries   = 8
)

// Transaction status values stored in the marker's status field. Idle
// must be zero so a freshly formatted (all-zero) descriptor reads as
// idle.
const (
	statusIdle          = 0
	statusRedoCommitted = 1 // redo log complete; replay on recovery
	statusUndoActive    = 2 // undo log live; roll back on recovery
)

// Marker field widths.
const (
	markerCountBits = 30
	markerCountMax  = 1<<markerCountBits - 1
)

// packMarker builds the single-word commit marker. An idle marker is
// exactly zero.
func packMarker(status int, count int, hash uint32) uint64 {
	if status == statusIdle {
		return 0
	}
	return uint64(status)<<62 | uint64(count&markerCountMax)<<32 | uint64(hash)
}

// unpackMarker splits a marker word into its fields.
func unpackMarker(w uint64) (status int, count int, hash uint32) {
	return int(w >> 62), int(w >> 32 & markerCountMax), uint32(w)
}

// logHashSeed/mix32 implement the FNV-1a-style fold the marker
// checksum uses: cheap, order-sensitive, and good enough to reject a
// stale or torn log tail (this is an integrity check against lost
// persists, not an adversary-resistant MAC).
const logHashSeed uint32 = 2166136261

func mix32(h uint32, x uint64) uint32 {
	h ^= uint32(x)
	h *= 16777619
	h ^= uint32(x >> 32)
	h *= 16777619
	return h
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.MaxLogEntries == 0 {
		cfg.MaxLogEntries = 1024
	}
	if cfg.HeapWords == 0 {
		cfg.HeapWords = 1 << 20
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	return cfg
}

// descStride returns the per-thread descriptor size in words, line
// aligned.
func descStride(maxLog int) uint64 {
	words := uint64(descEntries + 2*maxLog)
	return (words + memdev.WordsPerLine - 1) &^ uint64(memdev.WordsPerLine-1)
}

// metaWords returns the size of the TM's persistent metadata
// (superblock plus descriptors), line aligned.
func metaWords(threads, maxLog int) uint64 {
	return uint64(offDescs) + uint64(threads)*descStride(maxLog)
}

// rootSlots is the number of persistent heap roots the TM reserves
// for applications.
const rootSlots = 16
