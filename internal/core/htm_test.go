package core

import (
	"sync"
	"testing"

	"goptm/internal/durability"
	"goptm/internal/memdev"
)

func htmTM(t testing.TB, threads int) *TM {
	t.Helper()
	tm, err := New(Config{
		Algo: AlgoHTM, Medium: MediumNVM, Domain: durability.EADR,
		Threads: threads, HeapWords: 1 << 16, MaxLogEntries: 1024, OrecSize: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestHTMRejectedUnderADR(t *testing.T) {
	for _, dom := range []durability.Domain{durability.NoReserve, durability.ADR} {
		_, err := New(Config{Algo: AlgoHTM, Medium: MediumNVM, Domain: dom, Threads: 1})
		if err == nil {
			t.Errorf("HTM accepted under %v; clwb aborts hardware transactions", dom)
		}
	}
	// And accepted under the cache-persistent domains.
	for _, dom := range []durability.Domain{durability.EADR, durability.PDRAM, durability.PDRAMLite} {
		if _, err := New(Config{Algo: AlgoHTM, Medium: MediumNVM, Domain: dom, Threads: 1}); err != nil {
			t.Errorf("HTM rejected under %v: %v", dom, err)
		}
	}
}

func TestHTMBasicCommit(t *testing.T) {
	tm := htmTM(t, 1)
	th := tm.Thread(0)
	defer th.Detach()
	var a memdev.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(8)
		tx.Store(a, 41)
		if tx.Load(a) != 41 {
			t.Error("HTM read-own-write broken")
		}
		tx.Store(a, 42)
	})
	th.Atomic(func(tx *Tx) {
		if got := tx.Load(a); got != 42 {
			t.Fatalf("HTM committed value = %d", got)
		}
	})
	if th.Stats().HTMFallbacks != 0 {
		t.Fatal("small transaction fell back")
	}
}

func TestHTMIsLogless(t *testing.T) {
	tm := htmTM(t, 1)
	th := tm.Thread(0)
	defer th.Detach()
	f0 := th.Ctx().Stats().Flushes
	th.Atomic(func(tx *Tx) {
		a := tx.Alloc(8)
		for i := 0; i < 8; i++ {
			tx.Store(a+memdev.Addr(i), uint64(i))
		}
	})
	if got := th.Ctx().Stats().Flushes - f0; got != 0 {
		t.Fatalf("HTM issued %d flushes", got)
	}
	// The persistent descriptor must never leave the idle state.
	if st := th.Ctx().Load(tm.descBase(0) + descStatusOff); st != statusIdle {
		t.Fatalf("descriptor status = %d after HTM commit", st)
	}
}

func TestHTMCapacityFallback(t *testing.T) {
	tm := htmTM(t, 1)
	th := tm.Thread(0)
	defer th.Detach()
	var a memdev.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(HTMCapacity + 64)
		for i := 0; i < HTMCapacity+10; i++ {
			tx.Store(a+memdev.Addr(i), uint64(i))
		}
	})
	if th.Stats().HTMFallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", th.Stats().HTMFallbacks)
	}
	// The fallback (software) commit must still be correct.
	th.Atomic(func(tx *Tx) {
		for i := 0; i < HTMCapacity+10; i++ {
			if tx.Load(a+memdev.Addr(i)) != uint64(i) {
				t.Fatal("fallback commit lost data")
			}
		}
	})
}

func TestHTMDurableAtCommitUnderEADR(t *testing.T) {
	tm := htmTM(t, 1)
	th := tm.Thread(0)
	var a memdev.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(8)
		tx.Store(a, 1234)
	})
	tm.SetRoot(th, 0, a)
	vt := th.Now()
	th.Detach()
	tm.Crash(vt)
	tm2, rep, err := Reopen(tm.Bus(), tm.Config())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedoReplayed != 0 && rep.UndoRolledBack != 0 {
		// HTM leaves no logs; recovery should find nothing to do.
		t.Fatalf("recovery did log work after HTM: %+v", rep)
	}
	th2 := tm2.Thread(0)
	defer th2.Detach()
	th2.Atomic(func(tx *Tx) {
		if got := tx.Load(tm2.Root(th2, 0)); got != 1234 {
			t.Fatalf("HTM commit lost on crash: %d", got)
		}
	})
}

func TestHTMConcurrentAtomicity(t *testing.T) {
	const threads = 4
	const per = 300
	tm := htmTM(t, threads)
	setup := tm.Thread(0)
	var ctr memdev.Addr
	setup.Atomic(func(tx *Tx) {
		ctr = tx.Alloc(8)
		tx.Store(ctr, 0)
	})
	setup.Detach()
	ths := make([]*Thread, threads)
	for i := range ths {
		ths[i] = tm.Thread(i)
	}
	var wg sync.WaitGroup
	for _, th := range ths {
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			defer th.Detach()
			for i := 0; i < per; i++ {
				th.Atomic(func(tx *Tx) {
					tx.Store(ctr, tx.Load(ctr)+1)
				})
			}
		}(th)
	}
	wg.Wait()
	check := tm.Thread(0)
	defer check.Detach()
	check.Atomic(func(tx *Tx) {
		if got := tx.Load(ctr); got != threads*per {
			t.Fatalf("counter = %d, want %d", got, threads*per)
		}
	})
}

func TestHTMFasterThanRedoUnderEADR(t *testing.T) {
	// The §V hypothesis: HTM removes logging work entirely, so under
	// eADR it should beat the software redo path on write-heavy
	// transactions.
	run := func(algo Algo) int64 {
		tm, err := New(Config{
			Algo: algo, Medium: MediumNVM, Domain: durability.EADR,
			Threads: 1, HeapWords: 1 << 16, OrecSize: 1 << 12,
		})
		if err != nil {
			t.Fatal(err)
		}
		th := tm.Thread(0)
		defer th.Detach()
		var a memdev.Addr
		th.Atomic(func(tx *Tx) { a = tx.Alloc(64) })
		t0 := th.Now()
		for i := 0; i < 200; i++ {
			th.Atomic(func(tx *Tx) {
				for w := 0; w < 32; w++ {
					tx.Store(a+memdev.Addr(w), uint64(i))
				}
			})
		}
		return th.Now() - t0
	}
	htm := run(AlgoHTM)
	redo := run(OrecLazy)
	if htm >= redo {
		t.Fatalf("HTM (%d ns) not faster than redo (%d ns) under eADR", htm, redo)
	}
}
