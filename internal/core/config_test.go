package core

import (
	"testing"

	"goptm/internal/durability"
	"goptm/internal/memdev"
)

func TestAlgoAndMediumStrings(t *testing.T) {
	if OrecLazy.String() != "redo" || OrecEager.String() != "undo" || AlgoHTM.String() != "htm" {
		t.Fatal("algo names wrong")
	}
	if Algo(9).String() == "" {
		t.Fatal("unknown algo name empty")
	}
	if MediumNVM.String() != "Optane" || MediumDRAM.String() != "DRAM" {
		t.Fatal("medium names wrong")
	}
	if Medium(9).String() == "" {
		t.Fatal("unknown medium name empty")
	}
}

func TestDescStrideLineAligned(t *testing.T) {
	for _, maxLog := range []int{1, 7, 64, 1000, 1024} {
		s := descStride(maxLog)
		if s%memdev.WordsPerLine != 0 {
			t.Fatalf("descStride(%d) = %d not line aligned", maxLog, s)
		}
		if s < uint64(descEntries+2*maxLog) {
			t.Fatalf("descStride(%d) = %d too small", maxLog, s)
		}
	}
}

func TestDescriptorsDisjoint(t *testing.T) {
	tm := smallTM(t, OrecLazy, durability.ADR, 4)
	stride := descStride(tm.Config().MaxLogEntries)
	for i := 0; i < 3; i++ {
		lo, hi := tm.descBase(i), tm.descBase(i+1)
		if uint64(hi-lo) != stride {
			t.Fatalf("descriptors %d/%d overlap or gap: %d vs stride %d", i, i+1, hi-lo, stride)
		}
		// The last log entry of thread i must stay inside its stride.
		lastEntry := lo + descEntries + memdev.Addr(2*(tm.Config().MaxLogEntries-1)) + 1
		if lastEntry >= hi {
			t.Fatalf("thread %d log spills into thread %d descriptor", i, i+1)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}
	d := c.withDefaults()
	if d.MaxLogEntries != 1024 || d.HeapWords != 1<<20 || d.Threads != 1 {
		t.Fatalf("defaults = %+v", d)
	}
	// The original is not mutated.
	if c.MaxLogEntries != 0 {
		t.Fatal("withDefaults mutated its receiver")
	}
}

func TestNoSplitLogStillCorrect(t *testing.T) {
	// The ablation changes timing only; read-after-write must behave
	// identically.
	tm, err := New(Config{
		Algo: OrecLazy, Medium: MediumNVM, Domain: durability.ADR,
		Threads: 1, HeapWords: 1 << 14, MaxLogEntries: 64, OrecSize: 1 << 10,
		NoSplitLog: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := tm.Thread(0)
	defer th.Detach()
	var a memdev.Addr
	th.Atomic(func(tx *Tx) {
		a = tx.Alloc(8)
		tx.Store(a, 5)
		if tx.Load(a) != 5 {
			t.Fatal("read-own-write broken with unified log")
		}
		tx.Store(a, 6)
		if tx.Load(a) != 6 {
			t.Fatal("read-after-overwrite broken with unified log")
		}
	})
	th.Atomic(func(tx *Tx) {
		if tx.Load(a) != 6 {
			t.Fatal("commit broken with unified log")
		}
	})
}

func TestBatchedFlushCrashConsistent(t *testing.T) {
	// With flushes deferred to commit, the post-marker crash must still
	// replay correctly: F1 flushes the whole log before the marker.
	tm, err := New(Config{
		Algo: OrecLazy, Medium: MediumNVM, Domain: durability.ADR,
		Threads: 1, HeapWords: 1 << 14, MaxLogEntries: 64, OrecSize: 1 << 10,
		BatchedFlush: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := tm.Thread(0)
	var base memdev.Addr
	th.Atomic(func(tx *Tx) {
		base = tx.Alloc(16)
		for i := 0; i < 16; i++ {
			tx.Store(base+memdev.Addr(i), 1)
		}
	})
	tm.SetRoot(th, 0, base)
	th.Detach()
	tm2, rep := runUntilCrash(t, tm, "lazy:post-marker", func(tx *Tx) {
		for i := 0; i < 16; i++ {
			tx.Store(base+memdev.Addr(i), 2)
		}
	})
	if rep.RedoReplayed != 1 {
		t.Fatalf("batched-flush crash: %+v", rep)
	}
	assertAll(t, readCells(t, tm2, base, 16), 2, "batched flush crash")
}

func TestLatencyHistogramOnThread(t *testing.T) {
	tm := smallTM(t, OrecLazy, durability.ADR, 1)
	th := tm.Thread(0)
	defer th.Detach()
	for i := 0; i < 50; i++ {
		th.Atomic(func(tx *Tx) {
			a := tx.Alloc(8)
			tx.Store(a, 1)
		})
	}
	h := th.Latency()
	if h.Count() != 50 {
		t.Fatalf("latency samples = %d, want 50", h.Count())
	}
	if h.Percentile(50) <= 0 {
		t.Fatal("p50 latency zero")
	}
}

func TestNTStoreLogCrashConsistent(t *testing.T) {
	// Non-temporal log appends must leave the redo log durable at the
	// marker, exactly like the clwb strategy.
	tm, err := New(Config{
		Algo: OrecLazy, Medium: MediumNVM, Domain: durability.ADR,
		Threads: 1, HeapWords: 1 << 14, MaxLogEntries: 64, OrecSize: 1 << 10,
		NTStoreLog: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := tm.Thread(0)
	var base memdev.Addr
	th.Atomic(func(tx *Tx) {
		base = tx.Alloc(16)
		for i := 0; i < 16; i++ {
			tx.Store(base+memdev.Addr(i), 1)
		}
	})
	tm.SetRoot(th, 0, base)
	th.Detach()
	tm2, rep := runUntilCrash(t, tm, "lazy:post-marker", func(tx *Tx) {
		for i := 0; i < 16; i++ {
			tx.Store(base+memdev.Addr(i), 2)
		}
	})
	if rep.RedoReplayed != 1 {
		t.Fatalf("ntstore-log crash: %+v", rep)
	}
	assertAll(t, readCells(t, tm2, base, 16), 2, "ntstore log crash")
}

func TestNTStoreLogReadOwnWrites(t *testing.T) {
	tm, err := New(Config{
		Algo: OrecLazy, Medium: MediumNVM, Domain: durability.ADR,
		Threads: 1, HeapWords: 1 << 14, MaxLogEntries: 64, OrecSize: 1 << 10,
		NTStoreLog: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := tm.Thread(0)
	defer th.Detach()
	th.Atomic(func(tx *Tx) {
		a := tx.Alloc(8)
		tx.Store(a, 1)
		tx.Store(a, 2) // overwrite path
		if tx.Load(a) != 2 {
			t.Fatal("read-own-write broken with NT log")
		}
	})
}

func TestBackoffPolicies(t *testing.T) {
	if BackoffExponential.String() != "exponential" || BackoffNone.String() != "none" ||
		BackoffLinear.String() != "linear" || BackoffPolicy(9).String() == "" {
		t.Fatal("backoff policy names wrong")
	}
	// All policies must still commit contended work correctly.
	for _, pol := range []BackoffPolicy{BackoffExponential, BackoffNone, BackoffLinear} {
		tm, err := New(Config{
			Algo: OrecLazy, Medium: MediumNVM, Domain: durability.EADR,
			Threads: 4, HeapWords: 1 << 14, OrecSize: 1 << 10, Backoff: pol,
		})
		if err != nil {
			t.Fatal(err)
		}
		setup := tm.Thread(0)
		var ctr memdev.Addr
		setup.Atomic(func(tx *Tx) {
			ctr = tx.Alloc(8)
			tx.Store(ctr, 0)
		})
		setup.Detach()
		ths := make([]*Thread, 4)
		for i := range ths {
			ths[i] = tm.Thread(i)
		}
		done := make(chan struct{}, 4)
		for _, th := range ths {
			go func(th *Thread) {
				defer func() { done <- struct{}{} }()
				defer th.Detach()
				for i := 0; i < 100; i++ {
					th.Atomic(func(tx *Tx) { tx.Store(ctr, tx.Load(ctr)+1) })
				}
			}(th)
		}
		for i := 0; i < 4; i++ {
			<-done
		}
		check := tm.Thread(0)
		check.Atomic(func(tx *Tx) {
			if got := tx.Load(ctr); got != 400 {
				t.Fatalf("%v: counter = %d, want 400", pol, got)
			}
		})
		check.Detach()
	}
}

func TestSmallAccessors(t *testing.T) {
	tm := MustNew(Config{
		Algo: OrecLazy, Medium: MediumNVM, Domain: durability.ADR,
		Threads: 2, HeapWords: 1 << 14, MaxLogEntries: 64, OrecSize: 1 << 10,
	})
	if tm.Orecs() == nil || tm.Orecs().Size() != 1<<10 {
		t.Fatal("Orecs accessor wrong")
	}
	th := tm.Thread(1)
	defer th.Detach()
	if th.TID() != 1 {
		t.Fatalf("TID = %d", th.TID())
	}
	th.Atomic(func(tx *Tx) {
		a := tx.AllocZeroed(20)
		for i := 0; i < 20; i++ {
			if tx.Load(a+memdev.Addr(i)) != 0 {
				t.Fatal("AllocZeroed returned non-zero payload")
			}
		}
	})
	if tm.Commits() != 1 {
		t.Fatal("commit not counted")
	}
	tm.ResetStats()
	if tm.Commits() != 0 || tm.Aborts() != 0 {
		t.Fatal("ResetStats incomplete")
	}
	if (ErrLogOverflow{Entries: 3}).Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestMustNewPanicsOnIllegal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew accepted HTM under ADR")
		}
	}()
	MustNew(Config{Algo: AlgoHTM, Medium: MediumNVM, Domain: durability.ADR, Threads: 1})
}
