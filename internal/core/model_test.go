package core

import (
	"testing"
	"testing/quick"

	"goptm/internal/durability"
	"goptm/internal/memdev"
	"goptm/internal/simtime"
)

// TestRandomOpsMatchModel drives each algorithm with randomized
// transaction scripts — reads, writes, allocations, frees, and user
// aborts — and checks the heap against a Go-map model after every
// transaction. Aborted transactions must leave no trace; committed
// ones must apply completely.
func TestRandomOpsMatchModel(t *testing.T) {
	algos := []struct {
		algo Algo
		dom  durability.Domain
	}{
		{OrecLazy, durability.ADR},
		{OrecEager, durability.ADR},
		{AlgoHTM, durability.EADR},
	}
	for _, cfg := range algos {
		cfg := cfg
		t.Run(cfg.algo.String(), func(t *testing.T) {
			f := func(seed uint64, script []uint16) bool {
				return runScript(t, cfg.algo, cfg.dom, seed, script)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// runScript executes one randomized scenario and reports whether the
// final state matches the model.
func runScript(t *testing.T, algo Algo, dom durability.Domain, seed uint64, script []uint16) bool {
	t.Helper()
	const cells = 24
	tm, err := New(Config{
		Algo: algo, Medium: MediumNVM, Domain: dom,
		Threads: 1, HeapWords: 1 << 15, MaxLogEntries: 128, OrecSize: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := tm.Thread(0)
	defer th.Detach()

	var base memdev.Addr
	th.Atomic(func(tx *Tx) {
		base = tx.Alloc(cells)
		for i := 0; i < cells; i++ {
			tx.Store(base+memdev.Addr(i), 0)
		}
	})
	model := make([]uint64, cells)
	r := simtime.NewRand(seed)

	// Chop the script into transactions of 1..6 ops each.
	pos := 0
	for pos < len(script) {
		n := 1 + r.Intn(6)
		if pos+n > len(script) {
			n = len(script) - pos
		}
		ops := script[pos : pos+n]
		pos += n
		abortAt := -1
		if r.Intn(4) == 0 {
			abortAt = r.Intn(n)
		}
		shadow := make([]uint64, cells)
		copy(shadow, model)
		committed := true
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(scriptAbort); !ok {
						panic(rec)
					}
					committed = false
				}
			}()
			th.Atomic(func(tx *Tx) {
				for i, op := range ops {
					cell := memdev.Addr(op % cells)
					switch (op / cells) % 3 {
					case 0: // write
						v := uint64(op)*2654435761 + 1
						tx.Store(base+cell, v)
						shadow[cell] = v
					case 1: // read + verify against shadow
						if got := tx.Load(base + cell); got != shadow[cell] {
							t.Errorf("%v: mid-txn read cell %d = %d, want %d", algo, cell, got, shadow[cell])
						}
					case 2: // read-modify-write
						v := tx.Load(base+cell) + 1
						tx.Store(base+cell, v)
						shadow[cell] = v
					}
					if i == abortAt {
						panic(scriptAbort{})
					}
				}
			})
		}()
		if committed {
			copy(model, shadow)
		}
		// Validate the durable/visible state after every transaction.
		ok := true
		th.Atomic(func(tx *Tx) {
			for i := 0; i < cells; i++ {
				if tx.Load(base+memdev.Addr(i)) != model[i] {
					ok = false
				}
			}
		})
		if !ok {
			return false
		}
	}
	return true
}

// scriptAbort unwinds a user abort out of Atomic (Atomic would retry
// a tx.Abort forever, since the script would abort again).
type scriptAbort struct{}

func TestForeignPanicRollsBack(t *testing.T) {
	// A panic inside the transaction body must propagate, but only
	// after the attempt's locks and in-place writes are rolled back.
	for _, algo := range bothAlgos {
		tm := smallTM(t, algo, durability.ADR, 1)
		th := tm.Thread(0)
		var a memdev.Addr
		th.Atomic(func(tx *Tx) {
			a = tx.Alloc(8)
			tx.Store(a, 7)
		})
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%v: foreign panic swallowed", algo)
				}
			}()
			th.Atomic(func(tx *Tx) {
				tx.Store(a, 999)
				panic("user bug")
			})
		}()
		// The thread must still be usable and the value unchanged.
		th.Atomic(func(tx *Tx) {
			if got := tx.Load(a); got != 7 {
				t.Fatalf("%v: value after foreign panic = %d, want 7", algo, got)
			}
		})
		// And no orec lock may be left behind: a second writer
		// (fresh thread handle after the first detaches) commits fine.
		th.Detach()
		th2 := tm.Thread(0)
		th2.Atomic(func(tx *Tx) { tx.Store(a, 8) })
		th2.Detach()
	}
}
