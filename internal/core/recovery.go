package core

import (
	"fmt"

	"goptm/internal/alloc"
	"goptm/internal/membus"
	"goptm/internal/memdev"
)

// RecoveryReport summarizes what post-crash recovery did.
type RecoveryReport struct {
	RedoReplayed    int   // transactions whose redo logs were re-applied
	UndoRolledBack  int   // transactions whose undo logs were rolled back
	EntriesApplied  int   // total log entries written during recovery
	MarkersRejected int   // markers whose log checksum did not match (stale/torn tail discarded)
	BlocksSwept     int   // heap blocks reclaimed by the allocator's GC
	DurationNS      int64 // virtual time recovery took (log pass + heap GC)
}

// Recover brings the persistent image back to a transactionally
// consistent state after a crash:
//
//  1. Every thread descriptor is inspected. A redo log whose commit
//     marker is durable is replayed (the transaction logically
//     committed; its writeback may have been cut short). An undo log
//     marked active is rolled back (the transaction did not commit).
//     Both operations are idempotent, so a crash during recovery is
//     itself recoverable.
//  2. The allocator re-attaches and runs its conservative GC, sweeping
//     blocks leaked by in-flight transactions.
//
// Recover must be called before any Thread is created on a reopened
// TM.
func (tm *TM) Recover() (RecoveryReport, error) {
	var rep RecoveryReport
	if tm.cfg.Medium != MediumNVM {
		return rep, fmt.Errorf("core: recovery is only meaningful for an NVM-backed heap")
	}
	ctx := tm.bus.NewContext(0)
	defer ctx.Detach()
	startVT := ctx.Now()

	for t := 0; t < tm.cfg.Threads; t++ {
		d := tm.descBase(t)
		status, count, hash := unpackMarker(ctx.Load(d + descStatusOff))
		if count > tm.cfg.MaxLogEntries {
			return rep, fmt.Errorf("core: thread %d log count %d exceeds capacity %d (corrupt descriptor)", t, count, tm.cfg.MaxLogEntries)
		}
		// Recompute the marker checksum over the log entries as they
		// landed on media; a mismatch means the log tail never became
		// durable before the crash (a stale or prematurely-persisted
		// marker) and must not be trusted.
		mediaHash := logHashSeed
		for i := 0; i < count; i++ {
			ea := d + descEntries + memdev.Addr(2*i)
			mediaHash = mix32(mix32(mediaHash, ctx.Load(ea)), ctx.Load(ea+1))
		}
		switch status {
		case statusIdle:
			continue
		case statusRedoCommitted:
			if mediaHash != hash {
				// The redo log is incomplete, so the commit point was
				// never durably reached: the transaction did not commit
				// and its target data is untouched (writeback only
				// starts after the marker fence). Discard the log.
				rep.MarkersRejected++
				break
			}
			rep.RedoReplayed++
			for i := 0; i < count; i++ {
				ea := d + descEntries + memdev.Addr(2*i)
				a := memdev.Addr(ctx.Load(ea))
				v := ctx.Load(ea + 1)
				ctx.Store(a, v)
				ctx.CLWB(a)
				rep.EntriesApplied++
			}
			ctx.SFence()
		case statusUndoActive:
			n := count
			if mediaHash != hash {
				// Only the final record can be non-durable: each write
				// fences its record before updating in place, so every
				// earlier record was ordered by an earlier fence. A
				// mismatch therefore means the crash hit before the
				// final record's fence — and before its in-place
				// update, which cannot precede that fence. Roll back
				// everything but the unstable last record.
				rep.MarkersRejected++
				n = count - 1
			}
			rep.UndoRolledBack++
			for i := n - 1; i >= 0; i-- {
				ea := d + descEntries + memdev.Addr(2*i)
				a := memdev.Addr(ctx.Load(ea))
				old := ctx.Load(ea + 1)
				ctx.Store(a, old)
				ctx.CLWB(a)
				rep.EntriesApplied++
			}
			ctx.SFence()
		default:
			return rep, fmt.Errorf("core: thread %d has unknown status %d", t, status)
		}
		ctx.Store(d+descStatusOff, packMarker(statusIdle, 0, 0))
		ctx.CLWB(d)
		ctx.SFence()
	}

	heapBase := tm.base + memdev.Addr(metaWords(tm.cfg.Threads, tm.cfg.MaxLogEntries))
	heap, swept, err := alloc.Attach(ctx, heapBase, tm.cfg.HeapWords, rootSlots)
	if err != nil {
		return rep, err
	}
	tm.heap = heap
	rep.BlocksSwept = swept
	rep.DurationNS = ctx.Now() - startVT
	return rep, nil
}

// Reopen attaches to a crashed TM image on bus and runs recovery,
// returning the ready-to-use runtime.
func Reopen(bus *membus.Bus, cfg Config) (*TM, RecoveryReport, error) {
	tm, err := Attach(bus, cfg)
	if err != nil {
		return nil, RecoveryReport{}, err
	}
	rep, err := tm.Recover()
	if err != nil {
		return nil, rep, err
	}
	return tm, rep, nil
}
