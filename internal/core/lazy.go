package core

import (
	"goptm/internal/memdev"
	"goptm/internal/metrics"
	"goptm/internal/obs"
)

// This file implements "orec-lazy": the redo-logging PTM with
// commit-time locking (TL2-style), the best-performing redo algorithm
// in the paper's PACT'19 runtime.
//
// Persistence protocol (ADR; stronger domains elide flush/fence):
//
//	execution : every Store appends (addr, value) to the per-thread
//	            redo log in the persistent medium; the write-set
//	            *index* used by read-after-write lookups lives in DRAM
//	            (split-log tuning).
//	commit    : 1. acquire orecs for the write set (CAS, abort on
//	               conflict), validate the read set;
//	            2. flush outstanding log lines, fence            (F1)
//	            3. store the packed marker (status=COMMITTED |
//	               count | log checksum), flush, fence           (F2)
//	               -> durable commit point (one crash-atomic word)
//	            4. in-place writeback, flush touched lines, fence(F3)
//	            5. store status=IDLE, flush (log reclaimed)
//	            6. advance clock, release orecs at the new version
//
// O(1) fences per transaction regardless of write-set size.

// loadLazy is the TL2 read: write set first, then a version-validated
// memory read.
func (tx *Tx) loadLazy(a memdev.Addr) uint64 {
	th := tx.th
	// Read-after-write: probe the log index. Under the split-log
	// tuning this is a DRAM-resident hash probe; the NoSplitLog
	// ablation charges a load from the persistent log area instead.
	if v, ok := th.wpos.get(uint64(a)); ok {
		i := int(v)
		if th.tm.cfg.NoSplitLog {
			return th.ctx.Load(th.entryAddr(i) + 1)
		}
		th.ctx.MetaOp()
		return th.wlog[i].val
	}
	th.ctx.MetaOp() // index probe (miss)

	t := th.tm.orecs
	idx := t.Index(a)
	for {
		v1 := t.Load(idx)
		th.ctx.MetaOp()
		if lockedWord(v1) {
			abortWith(AbortLockConflict)
		}
		val := th.ctx.Load(a)
		v2 := t.Load(idx)
		if v1 != v2 {
			abortWith(AbortValidation)
		}
		if versionOf(v1) <= tx.rv {
			th.rset = append(th.rset, readRec{idx: idx, ver: versionOf(v1)})
			return val
		}
		// The location is newer than our snapshot: extend the
		// timestamp and retry this read under the new rv. Returning
		// the already-read value without retrying would let a write
		// committed between the v2 check and the extension slip past
		// commit-time validation (a lost update).
		if !tx.extend() {
			abortWith(AbortValidation)
		}
	}
}

// storeLazy buffers the write in the redo log (persistent data,
// volatile index).
func (tx *Tx) storeLazy(a memdev.Addr, v uint64) {
	th := tx.th
	th.ctx.MetaOp() // index probe
	if pos, ok := th.wpos.get(uint64(a)); ok {
		i := int(pos)
		th.wlog[i].val = v
		// Overwrite the persistent value word in place; if its line
		// was already flushed, make the durable copy current again
		// (re-flush, or a fresh non-temporal store).
		if th.tm.cfg.NTStoreLog && th.tm.cfg.Domain.RequiresFlush() {
			th.ctx.NTStore(th.entryAddr(i)+1, v)
			return
		}
		th.ctx.Store(th.entryAddr(i)+1, v)
		if !th.tm.cfg.BatchedFlush && i < th.flushed {
			th.ctx.CLWB(th.entryAddr(i) + 1)
		}
		return
	}
	i := len(th.wlog)
	if i >= th.tm.cfg.MaxLogEntries {
		panic(ErrLogOverflow{Entries: i + 1})
	}
	th.wlog = append(th.wlog, redoEntry{addr: a, val: v})
	th.wpos.put(uint64(a), uint64(i))
	ea := th.entryAddr(i)
	drainStart := th.ctx.Now()
	if th.tm.cfg.NTStoreLog && th.tm.cfg.Domain.RequiresFlush() {
		// Non-temporal log appends: durable at WPQ accept, nothing
		// left to flush at commit.
		th.ctx.NTStore(ea, uint64(a))
		th.ctx.NTStore(ea+1, v)
		th.flushed = i + 1
		th.rec.Span(obs.PhaseDrain, drainStart, th.ctx.Now())
		return
	}
	th.ctx.Store(ea, uint64(a))
	th.ctx.Store(ea+1, v)
	// Incremental flushing (the default, as in the reference runtime)
	// flushes each log line as it fills; the final partial line is
	// flushed at commit. Flushing per *entry* would re-flush the same
	// line repeatedly, which neither the real runtime nor the WPQ do.
	if !th.tm.cfg.BatchedFlush && entriesPerLine(i+1) {
		th.ctx.CLWB(ea)
		th.flushed = i + 1
	}
	th.rec.Span(obs.PhaseDrain, drainStart, th.ctx.Now())
}

// entriesPerLine reports whether n redo entries end exactly on a
// cache-line boundary (entries are two words; the log area is
// line-aligned).
func entriesPerLine(n int) bool {
	return (descEntries+2*n)%memdev.WordsPerLine == 0
}

// commitLazy runs the commit protocol; it panics abortSignal on
// conflict.
func (th *Thread) commitLazy(tx *Tx) {
	if len(th.wlog) == 0 {
		// Read-only transactions commit without locking or logging;
		// every read was validated against rv at execution time.
		th.stats.ReadOnlyTxns++
		th.tm.met.Add(metrics.CtrReadOnlyTxns, 1)
		return
	}
	t := th.tm.orecs

	// 1. Acquire write-set orecs. Distinct addresses can share an
	// orec; the lockVer probe (empty at commit entry, populated as
	// locks are taken) dedups so a transaction never self-conflicts.
	validateStart := th.ctx.Now()
	for _, e := range th.wlog {
		idx := t.Index(e.addr)
		if _, locked := th.lockVer.get(uint64(idx)); locked {
			continue
		}
		v := t.Load(idx)
		th.ctx.MetaOp()
		if lockedWord(v) || versionOf(v) > tx.rv {
			th.abortCommit(AbortLockConflict)
		}
		if !t.TryLock(idx, th.owner, versionOf(v)) {
			th.abortCommit(AbortLockConflict)
		}
		th.locks = append(th.locks, lockRec{idx: idx, oldVer: versionOf(v)})
		th.lockVer.put(uint64(idx), versionOf(v))
	}

	// Validate the read set now that the write set is locked.
	if !th.validateReadSet() {
		th.abortCommit(AbortValidation)
	}
	th.rec.Span(obs.PhaseValidate, validateStart, th.ctx.Now())

	// 2. Make the redo log durable: everything not yet flushed
	// incrementally (all of it under BatchedFlush, just the partial
	// tail line otherwise).
	drainStart := th.ctx.Now()
	start := th.flushed
	if th.tm.cfg.BatchedFlush {
		start = 0
	}
	th.tm.hook("lazy:pre-log-flush", th)
	for e := start; e < len(th.wlog); e += memdev.WordsPerLine / 2 {
		th.ctx.CLWB(th.entryAddr(e))
	}
	th.rec.Span(obs.PhaseDrain, drainStart, th.ctx.Now())
	th.fence("lazy:F1") // F1: log entries before marker
	th.tm.hook("lazy:pre-marker", th)

	// 3. Durable commit point: one packed marker word carrying status,
	// count, and the log checksum, so the commit point is a single
	// crash-atomic store (see the layout comment in config.go).
	commitStart := th.ctx.Now()
	h := logHashSeed
	for _, e := range th.wlog {
		h = mix32(h, uint64(e.addr))
		h = mix32(h, e.val)
	}
	th.ctx.Store(th.desc+descStatusOff, packMarker(statusRedoCommitted, len(th.wlog), h))
	th.ctx.CLWB(th.desc)
	th.rec.Span(obs.PhaseCommit, commitStart, th.ctx.Now())
	th.fence("lazy:F2") // F2: marker durable before writeback
	th.tm.hook("lazy:post-marker", th)

	wv := t.IncClock()
	th.ctx.MetaOp()

	// 4. Writeback.
	writebackStart := th.ctx.Now()
	for i, e := range th.wlog {
		th.ctx.Store(e.addr, e.val)
		if i == len(th.wlog)/2 {
			th.tm.hook("lazy:mid-writeback", th)
		}
	}
	th.wbLines = th.wbLines[:0]
	for _, e := range th.wlog {
		line := uint64(e.addr) >> memdev.LineShift
		dup := false
		for _, l := range th.wbLines {
			if l == line {
				dup = true
				break
			}
		}
		if !dup {
			th.wbLines = append(th.wbLines, line)
			th.ctx.CLWB(e.addr)
		}
	}
	th.rec.Span(obs.PhaseDrain, writebackStart, th.ctx.Now())
	th.fence("lazy:F3") // F3: data durable before log reclaim
	th.tm.hook("lazy:post-writeback", th)

	// 5. Reclaim the log.
	reclaimStart := th.ctx.Now()
	th.ctx.Store(th.desc+descStatusOff, packMarker(statusIdle, 0, 0))
	th.ctx.CLWB(th.desc)
	th.tm.hook("lazy:post-reclaim", th)

	// 6. Publish.
	th.releaseLocks(wv)
	th.rec.Span(obs.PhaseCommit, reclaimStart, th.ctx.Now())
	th.noteLogHighWater(len(th.wlog))
}

// abortCommit unwinds a failed commit; the abort path releases any
// locks acquired so far (see onAbort).
func (th *Thread) abortCommit(r AbortReason) {
	abortWith(r)
}
