package core

import (
	"goptm/internal/cachesim"
	"goptm/internal/metrics"
	"goptm/internal/wpq"
)

// MetricsSnapshot assembles the machine's complete counter state into
// one flat metrics.Snapshot: device traffic from memdev, WPQ pressure
// from the controller, cache and page-cache activity, orec contention,
// and — last, because the amplification ratios divide media traffic by
// the device fields — the registry-owned transaction and media
// counters.
func (tm *TM) MetricsSnapshot() metrics.Snapshot {
	var s metrics.Snapshot

	dev := tm.bus.Device().Counters()
	s.NVMLoads = dev.NVMLoads
	s.NVMStores = dev.NVMStores
	s.Flushes = dev.Flushes

	ctl := tm.bus.Controller().Counters()
	s.WPQAccepts = ctl.Accepts
	s.WPQStallNS = ctl.StallNS
	s.WPQStallEvents = ctl.StallEvents
	s.WPQMaxOccupancy = int64(ctl.MaxOccupancy)
	s.WPQCombinedHits = ctl.CombinedHits
	s.WPQAcceptsCLWB = ctl.AcceptsByCause[wpq.CauseCLWB]
	s.WPQAcceptsEviction = ctl.AcceptsByCause[wpq.CauseEviction]
	s.WPQAcceptsWCDrain = ctl.AcceptsByCause[wpq.CauseWCDrain]
	s.WPQStallNSCLWB = ctl.StallNSByCause[wpq.CauseCLWB]
	s.WPQStallNSEviction = ctl.StallNSByCause[wpq.CauseEviction]
	s.WPQStallNSWCDrain = ctl.StallNSByCause[wpq.CauseWCDrain]
	s.NVMWriteBusyNS, s.NVMReadBusyNS = tm.bus.Controller().Utilization()

	hits := tm.bus.Cache().HitCounts()
	s.CacheHitL1 = hits[cachesim.HitL1]
	s.CacheHitL2 = hits[cachesim.HitL2]
	s.CacheHitL3 = hits[cachesim.HitL3]
	s.CacheMisses = hits[cachesim.Miss]
	ev := tm.bus.Cache().EvictionCounts()
	s.CacheEvictL1 = ev.L1
	s.CacheEvictL2 = ev.L2
	s.CacheEvictL3 = ev.L3Clean
	s.CacheEvictL3Dirty = ev.L3Dirty

	if pc := tm.bus.PageCache(); pc != nil {
		ps := pc.Stats()
		s.PageHits = ps.Hits
		s.PageMisses = ps.Misses
		s.PageEvictions = ps.Evictions
		s.PageWritebacks = ps.Writebacks
		s.PagePrefetches = ps.Prefetches
		s.PagePrefetchHits = ps.PrefetchHit
		s.PageAsyncCleans = ps.AsyncCleans
	}

	s.OrecCASFailures = tm.orecs.CASFailures()

	s.FillRegistry(tm.met)
	return s
}
